package scanshare

import (
	"time"

	"repro/internal/sched"
	"repro/internal/workload"
)

// Serving surface: the open-loop, many-client scenario on top of the
// paper's engine. Unlike the closed-loop figure experiments, clients
// here generate queries on a Poisson arrival process and a multi-tenant
// scheduler admits them under an MPL limit through a bounded queue —
// the regime where overload, queue wait, and latency SLOs appear.
type (
	// ServeConfig parameterizes one open-loop serving run.
	ServeConfig = workload.ServeConfig
	// ServeResult reports one serving run (engine result + scheduler stats).
	ServeResult = workload.ServeResult
	// SchedConfig parameterizes the admission scheduler directly.
	SchedConfig = sched.Config
	// SchedStats is the scheduler's aggregate serving report.
	SchedStats = sched.Stats
	// LatencyDist summarizes a latency distribution (p50/p95/p99/max/mean).
	LatencyDist = sched.LatencyDist
	// QueryStat is one completed query's recorded life cycle.
	QueryStat = sched.QueryStat
	// Scheduler is the multi-tenant admission scheduler; embed one in a
	// custom System-based simulation via NewScheduler.
	Scheduler = sched.Scheduler
)

// NewScheduler creates an admission scheduler bound to the system's
// runtime, for custom serving scenarios built on System.
func (s *System) NewScheduler(cfg SchedConfig) *Scheduler {
	return sched.New(s.RT, cfg)
}

// DefaultServeConfig re-exports the serving defaults: 64 streams,
// 8 qps/stream, MPL 8, 64-deep admission queue, 250 ms SLO.
func DefaultServeConfig() ServeConfig { return workload.DefaultServeConfig() }

// RunServe exposes the open-loop serving driver directly.
func RunServe(db *TPCHDB, cfg ServeConfig) *ServeResult { return workload.RunServe(db, cfg) }

// ServeOptions parameterizes the serving sweep (cmd/scanbench -serve):
// the cross product of arrival rates, MPL limits, and policies, each run
// over Options.Streams open-loop client streams.
type ServeOptions struct {
	Options
	// Rates is the per-stream arrival-rate axis in queries per virtual
	// second (default {1, 5, 20}: light load, near saturation, overload
	// at the default scale).
	Rates []float64
	// MPLs is the concurrency-limit axis (default {8, 32}).
	MPLs []int
	// Policies is the buffer-management axis (default LRU, Clock, PBM,
	// CScan).
	Policies []Policy
	// Shards is the buffer-pool shard-count axis (default {1, 8}), so a
	// sweep measures the sharding effect instead of asserting it. CScan
	// rows ignore it (the ABM replaces the pool) and run once.
	Shards []int
	// QueueDepth bounds the admission queue (0 => default 64).
	QueueDepth int
	// SLO is the latency objective (0 => 250 ms).
	SLO time.Duration
	// Real runs every cell on the real-threaded runtime (goroutines and
	// wall-clock time) instead of the deterministic simulator. Latencies
	// are then real milliseconds and runs are not reproducible.
	Real bool
}

// DefaultServeOptions returns the serving-sweep defaults.
func DefaultServeOptions() ServeOptions {
	return ServeOptions{
		Options:  DefaultOptions(),
		Rates:    []float64{1, 5, 20},
		MPLs:     []int{8, 32},
		Policies: []Policy{LRU, Clock, PBM, CScan},
		Shards:   []int{1, DefaultPoolShards},
		SLO:      250 * time.Millisecond,
	}
}

func (o ServeOptions) fill() ServeOptions {
	d := DefaultServeOptions()
	o.Options = o.Options.fill()
	if len(o.Rates) == 0 {
		o.Rates = d.Rates
	}
	if len(o.MPLs) == 0 {
		o.MPLs = d.MPLs
	}
	if len(o.Policies) == 0 {
		o.Policies = d.Policies
	}
	// Drop non-positive shard counts: 0 is the CScan-only row marker in
	// the output and must not label a defaulted sharded run.
	shards := o.Shards[:0:0]
	for _, s := range o.Shards {
		if s > 0 {
			shards = append(shards, s)
		}
	}
	o.Shards = shards
	if len(o.Shards) == 0 {
		o.Shards = d.Shards
	}
	if o.SLO == 0 {
		o.SLO = d.SLO
	}
	return o
}

// ServeRow is one cell of the serving sweep: a (rate, MPL, policy)
// configuration and its throughput/latency report.
type ServeRow struct {
	Rate       float64 // per-stream arrival rate (queries/s)
	MPL        int
	Policy     string
	Shards     int // buffer-pool shard count (0 for CScan rows: no pool)
	Completed  int64
	Rejected   int64
	Throughput float64 // completed queries per virtual second
	P50ms      float64 // end-to-end latency percentiles (virtual ms)
	P95ms      float64
	P99ms      float64
	QWaitP95ms float64 // queue-wait p95 (virtual ms)
	SLOPct     float64 // fraction of completed queries meeting the SLO, 0..100
	IOMB       float64
}

// ServeSweep runs the arrival-rate x MPL x policy x shard-count cross
// product and returns one row per cell, shards=1 and sharded rows
// adjacent so the sharding effect reads off one table.
func ServeSweep(o ServeOptions) []ServeRow {
	o = o.fill()
	db := GenerateTPCH(o.SF, o.Seed)
	var out []ServeRow
	for _, rate := range o.Rates {
		for _, mpl := range o.MPLs {
			for _, pol := range o.Policies {
				shardAxis := o.Shards
				if pol == CScan {
					// The ABM replaces the page pool; one row suffices.
					shardAxis = []int{0}
				}
				for _, shards := range shardAxis {
					cfg := DefaultServeConfig()
					cfg.Config = o.apply(cfg.Config)
					cfg.Config.Real = o.Real
					cfg.Policy = pol
					cfg.ArrivalRate = rate
					cfg.MPL = mpl
					cfg.QueueDepth = o.QueueDepth
					cfg.SLO = o.SLO
					if shards > 0 {
						cfg.PoolShards = shards
					}
					res := workload.RunServe(db, cfg)
					out = append(out, ServeRow{
						Rate:       rate,
						MPL:        mpl,
						Policy:     pol.String(),
						Shards:     shards,
						Completed:  res.Sched.Completed,
						Rejected:   res.Sched.Rejected,
						Throughput: res.Sched.Throughput,
						P50ms:      ms(res.Sched.Latency.P50),
						P95ms:      ms(res.Sched.Latency.P95),
						P99ms:      ms(res.Sched.Latency.P99),
						QWaitP95ms: ms(res.Sched.QueueWait.P95),
						SLOPct:     res.Sched.SLOAttainment * 100,
						IOMB:       mb(res.TotalIOBytes),
					})
				}
			}
		}
	}
	return out
}

func ms(d time.Duration) float64 { return float64(d) / 1e6 }

// CompareOptions parameterizes the closed-vs-open-loop comparison
// (cmd/scanbench -compare): one (rate, MPL, policy) point run twice over
// the identical query mix, once with open-loop Poisson arrivals and once
// closed-loop (each stream waits for completion before its next query).
type CompareOptions struct {
	Options
	// Rate is the per-stream arrival (open) / think (closed) rate in
	// queries per virtual second. The default of 20 overloads the default
	// scale, where the disciplines diverge most visibly.
	Rate float64
	// MPL is the scheduler concurrency limit (default 8).
	MPL int
	// Policy is the buffer-management policy (default PBM).
	Policy Policy
	// Shards is the buffer-pool shard count (default 8).
	Shards int
	// QueueDepth bounds the admission queue (0 => default 64, negative
	// => unbounded).
	QueueDepth int
	// SLO is the latency objective (0 => 250 ms).
	SLO time.Duration
	// Real runs both loops on the real-threaded runtime.
	Real bool
}

// DefaultCompareOptions returns the comparison defaults.
func DefaultCompareOptions() CompareOptions {
	return CompareOptions{Options: DefaultOptions(), Rate: 20, MPL: 8, Policy: PBM, Shards: DefaultPoolShards}
}

// CompareReport is the result of one closed-vs-open-loop comparison: the
// same sweep row shape for both disciplines, plus the latency gap the
// closed-loop measurement omits (coordinated omission).
type CompareReport struct {
	Open, Closed ServeRow
	// GapP50ms/GapP95ms/GapP99ms are open minus closed latency at each
	// percentile, in virtual ms: the queueing delay a closed-loop
	// benchmark hides from its latency report.
	GapP50ms, GapP95ms, GapP99ms float64
}

// Compare runs the closed-vs-open-loop comparison at one configuration.
func Compare(o CompareOptions) CompareReport {
	d := DefaultCompareOptions()
	o.Options = o.Options.fill()
	if o.Rate <= 0 {
		o.Rate = d.Rate
	}
	if o.MPL <= 0 {
		o.MPL = d.MPL
	}
	if o.Shards <= 0 {
		o.Shards = d.Shards
	}
	db := GenerateTPCH(o.SF, o.Seed)
	cfg := DefaultServeConfig()
	cfg.Config = o.apply(cfg.Config)
	cfg.Config.Real = o.Real
	cfg.Policy = o.Policy
	cfg.PoolShards = o.Shards
	cfg.ArrivalRate = o.Rate
	cfg.MPL = o.MPL
	cfg.QueueDepth = o.QueueDepth
	if o.SLO != 0 {
		cfg.SLO = o.SLO
	}
	res := workload.RunCompare(db, cfg)
	row := func(r *workload.ServeResult) ServeRow {
		return ServeRow{
			Rate:       o.Rate,
			MPL:        o.MPL,
			Policy:     o.Policy.String(),
			Shards:     o.Shards,
			Completed:  r.Sched.Completed,
			Rejected:   r.Sched.Rejected,
			Throughput: r.Sched.Throughput,
			P50ms:      ms(r.Sched.Latency.P50),
			P95ms:      ms(r.Sched.Latency.P95),
			P99ms:      ms(r.Sched.Latency.P99),
			QWaitP95ms: ms(r.Sched.QueueWait.P95),
			SLOPct:     r.Sched.SLOAttainment * 100,
			IOMB:       mb(r.TotalIOBytes),
		}
	}
	rep := CompareReport{Open: row(res.Open), Closed: row(res.Closed)}
	rep.GapP50ms = rep.Open.P50ms - rep.Closed.P50ms
	rep.GapP95ms = rep.Open.P95ms - rep.Closed.P95ms
	rep.GapP99ms = rep.Open.P99ms - rep.Closed.P99ms
	return rep
}
