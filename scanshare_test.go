package scanshare

import (
	"testing"
	"time"

	"repro/internal/exec"
)

func TestSystemQuickstartFlow(t *testing.T) {
	for _, pol := range []Policy{LRU, PBM, CScan} {
		pol := pol
		t.Run(pol.String(), func(t *testing.T) {
			sys := NewSystem(SystemConfig{Policy: pol, BufferBytes: 4 << 20, BandwidthMB: 500})
			table, err := sys.Catalog.CreateTable("t", Schema{
				{Name: "k", Type: Int64, Width: 8},
				{Name: "v", Type: Float64, Width: 8},
			})
			if err != nil {
				t.Fatal(err)
			}
			data := NewColumnData()
			const n = 50_000
			ks := make([]int64, n)
			vs := make([]float64, n)
			for i := range ks {
				ks[i] = int64(i % 10)
				vs[i] = 1
			}
			data.I64[0] = ks
			data.F64[1] = vs
			snap, err := table.Master().Append(data)
			if err != nil {
				t.Fatal(err)
			}
			if err := snap.Commit(); err != nil {
				t.Fatal(err)
			}
			sys.Run(func() {
				res := exec.Collect(&exec.HashAggr{
					Child:  sys.NewScan(snap, []int{0, 1}, nil, nil),
					Groups: []int{0},
					Aggs:   []exec.AggSpec{{Kind: exec.AggSum, Col: 1}},
				})
				if res.N != 10 {
					t.Errorf("groups = %d, want 10", res.N)
				}
				for i := 0; i < res.N; i++ {
					if res.Vecs[1].F64[i] != n/10 {
						t.Errorf("group sum = %v, want %v", res.Vecs[1].F64[i], n/10)
					}
				}
			})
			if sys.IOBytes() == 0 {
				t.Error("no I/O recorded")
			}
			if sys.Now() == 0 {
				t.Error("no virtual time elapsed")
			}
		})
	}
}

func TestSystemWithPDTDeltas(t *testing.T) {
	sys := NewSystem(SystemConfig{Policy: PBM, BufferBytes: 4 << 20})
	table, err := sys.Catalog.CreateTable("t", Schema{{Name: "v", Type: Int64, Width: 8}})
	if err != nil {
		t.Fatal(err)
	}
	data := NewColumnData()
	data.I64[0] = []int64{1, 2, 3, 4, 5}
	snap, _ := table.Master().Append(data)
	_ = snap.Commit()

	deltas := NewPDT(table.Schema, 5)
	deltas.DeleteAt(0)                  // drops the value 1: [2 3 4 5]
	deltas.InsertAt(3, Row{IntVal(99)}) // before the value 5
	sys.Run(func() {
		// Errorf (not Fatalf) inside simulated processes: Goexit would
		// strand the engine.
		res := exec.Collect(sys.NewScan(snap, []int{0}, nil, deltas))
		want := []int64{2, 3, 4, 99, 5}
		if res.N != len(want) {
			t.Errorf("N = %d, want %d", res.N, len(want))
			return
		}
		for i, w := range want {
			if res.Vecs[0].I64[i] != w {
				t.Errorf("row %d = %d, want %d", i, res.Vecs[0].I64[i], w)
			}
		}
	})
}

// tinyFigOptions shrinks the figure sweeps for test speed.
func tinyFigOptions() Options {
	return Options{SF: 0.004, Seed: 3, Streams: 2, QueriesPerStream: 3, ThreadsPerQuery: 2}
}

func TestFig11ProducesAllSeries(t *testing.T) {
	rows := Fig11(tinyFigOptions())
	if len(rows) != len(BufferFracs)*4 { // LRU, CScans, PBM, OPT per x
		t.Fatalf("rows = %d, want %d", len(rows), len(BufferFracs)*4)
	}
	seen := map[string]bool{}
	for _, r := range rows {
		seen[r.Policy] = true
		if r.Policy != "OPT" && r.AvgStreamSec <= 0 {
			t.Errorf("%s at %v: no stream time", r.Policy, r.X)
		}
		if r.IOMB < 0 {
			t.Errorf("negative IO")
		}
	}
	for _, p := range []string{"LRU", "CScans", "PBM", "OPT"} {
		if !seen[p] {
			t.Errorf("missing series %s", p)
		}
	}
}

func TestFig17SharingSeries(t *testing.T) {
	rows := Fig17(tinyFigOptions())
	if len(rows) == 0 {
		t.Fatal("no sharing samples")
	}
	prev := -1.0
	for _, r := range rows {
		if r.TimeSec <= prev {
			t.Fatal("sample times not increasing")
		}
		prev = r.TimeSec
	}
}

func TestPartitionRangeReexport(t *testing.T) {
	parts := PartitionRange(0, 100, 3)
	if len(parts) != 3 || parts[0].Lo != 0 || parts[2].Hi != 100 {
		t.Fatalf("parts = %+v", parts)
	}
}

// Sweeps must reject unknown admission-policy names before generating
// any data, with a message naming the registered menu.
func TestServeSweepValidatesAdmissionPolicies(t *testing.T) {
	for name, run := range map[string]func(){
		"sweep":   func() { ServeSweep(ServeOptions{AdmissionPolicies: []string{"ses"}}) },
		"compare": func() { Compare(CompareOptions{Admission: "ses"}) },
	} {
		name, run := name, run
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("unknown admission policy did not panic")
				}
			}()
			run()
		})
	}
}

func TestDefaultConfigsMatchPaper(t *testing.T) {
	m := DefaultMicroConfig()
	if m.Streams != 8 || m.QueriesPerStream != 16 || m.BufferFrac != 0.4 || m.BandwidthMB != 700 {
		t.Fatalf("micro defaults diverge from §4.1: %+v", m)
	}
	h := DefaultTPCHConfig()
	if h.BufferFrac != 0.3 || h.BandwidthMB != 600 {
		t.Fatalf("TPC-H defaults diverge from §4.2: %+v", h)
	}
	if m.PerTupleCPU <= 0 || m.PerTupleCPU > time.Microsecond {
		t.Fatalf("implausible CPU cost %v", m.PerTupleCPU)
	}
}
