package wire

import (
	"encoding/json"
	"testing"
	"time"
)

func TestDurationRoundTrip(t *testing.T) {
	b, err := json.Marshal(Duration(250 * time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != `"250ms"` {
		t.Errorf("marshal = %s, want \"250ms\"", b)
	}
	var d Duration
	if err := json.Unmarshal(b, &d); err != nil {
		t.Fatal(err)
	}
	if time.Duration(d) != 250*time.Millisecond {
		t.Errorf("round trip = %v", time.Duration(d))
	}
}

func TestDurationAcceptsNanoseconds(t *testing.T) {
	var d Duration
	if err := json.Unmarshal([]byte("1500000"), &d); err != nil {
		t.Fatal(err)
	}
	if time.Duration(d) != 1500*time.Microsecond {
		t.Errorf("numeric unmarshal = %v", time.Duration(d))
	}
	if err := json.Unmarshal([]byte(`"not a duration"`), &d); err == nil {
		t.Error("bad duration string: want error")
	}
}

// TestQueryRequestDecode covers the hand-written-curl shape: sparse
// fields, a string deadline, an explicit predicate.
func TestQueryRequestDecode(t *testing.T) {
	body := `{"Kind":"scan","Hi":1000,"Deadline":"2s","Predicate":{"Col":"l_shipdate","Lo":10,"Hi":20}}`
	var req QueryRequest
	if err := json.Unmarshal([]byte(body), &req); err != nil {
		t.Fatal(err)
	}
	if req.Kind != KindScan || req.Hi != 1000 || req.Tenant != nil {
		t.Errorf("decoded %+v", req)
	}
	if time.Duration(req.Deadline) != 2*time.Second {
		t.Errorf("Deadline = %v", time.Duration(req.Deadline))
	}
	if req.Predicate == nil || req.Predicate.Col != "l_shipdate" || req.Predicate.Hi != 20 {
		t.Errorf("Predicate = %+v", req.Predicate)
	}
}

// TestQueryRequestOmitEmpty: a zero request marshals to "{}" so request
// logs and examples stay terse.
func TestQueryRequestOmitEmpty(t *testing.T) {
	b, err := json.Marshal(QueryRequest{})
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != "{}" {
		t.Errorf("zero request = %s, want {}", b)
	}
}
