// Package wire defines the versioned JSON schema of the scanshare
// network surface. One set of types covers every producer and consumer:
// scanserved's request/response bodies, its /statz export, the scanload
// load-generator client, and scanbench's -json sweep output — so
// socket-path numbers and in-process sweep rows are directly comparable
// field for field.
//
// The package is deliberately dependency-free (stdlib only) so clients
// can vendor or copy it without pulling in the engine.
package wire

import (
	"encoding/json"
	"fmt"
	"strconv"
	"time"
)

// Version is the wire-schema version; it prefixes every endpoint path
// and is echoed in Statz so clients can detect skew.
const Version = "v1"

// Endpoint paths served by scanserved.
const (
	// PathQuery accepts a POST with a QueryRequest body and streams the
	// result back as NDJSON: one JSON array per row, then one final
	// QueryResult object (rows start with '[', the trailer with '{').
	PathQuery = "/" + Version + "/query"
	// PathUpdate accepts a POST with an UpdateRequest body: one update
	// query through the same admission scheduler as reads, answered with
	// an UpdateResult (or ErrorReply on refusal).
	PathUpdate = "/" + Version + "/update"
	// PathStatz serves the Statz snapshot as JSON.
	PathStatz = "/" + Version + "/statz"
	// PathHealth serves liveness: 200 "ok" normally, 503 "draining"
	// once graceful shutdown has begun.
	PathHealth = "/healthz"
)

// ContentTypeNDJSON is the streaming response content type.
const ContentTypeNDJSON = "application/x-ndjson"

// Duration marshals as a Go duration string ("250ms", "1.5s") and
// unmarshals from either that form or a plain number of nanoseconds, so
// hand-written curl bodies stay readable.
type Duration time.Duration

// MarshalJSON renders the duration as its Go string form.
func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

// UnmarshalJSON accepts a duration string or a number of nanoseconds.
func (d *Duration) UnmarshalJSON(b []byte) error {
	if len(b) > 0 && b[0] == '"' {
		var s string
		if err := json.Unmarshal(b, &s); err != nil {
			return err
		}
		v, err := time.ParseDuration(s)
		if err != nil {
			return fmt.Errorf("wire: bad duration %q: %v", s, err)
		}
		*d = Duration(v)
		return nil
	}
	ns, err := strconv.ParseInt(string(b), 10, 64)
	if err != nil {
		return fmt.Errorf("wire: bad duration %s: want a string like \"250ms\" or nanoseconds", b)
	}
	*d = Duration(ns)
	return nil
}

// Query kinds: the microbenchmark aggregations and a raw row stream.
const (
	// KindQ1 and KindQ6 run the paper's microbenchmark aggregation
	// plans over the requested range; they return a handful of rows.
	KindQ1 = "q1"
	KindQ6 = "q6"
	// KindScan streams the scanned rows themselves (the microbenchmark
	// column set), the kind that exercises result-delivery backpressure.
	KindScan = "scan"
)

// Predicate is an explicit int64 range restriction [Lo, Hi] on a
// lineitem column, pushed down to the scans for zone-map pruning.
type Predicate struct {
	Col    string
	Lo, Hi int64
}

// QueryRequest is the POST body of PathQuery.
type QueryRequest struct {
	// Tenant pins the query's fairness domain. Absent, the query
	// belongs to its connection's tenant (connections are assigned
	// tenants round-robin), so naive clients get multi-tenancy for
	// free and load generators can pin exact stream→tenant maps.
	Tenant *int `json:",omitempty"`
	// Kind selects the plan: "q1", "q6" (default) or "scan".
	Kind string `json:",omitempty"`
	// Lo and Hi restrict the scan to the half-open row range [Lo, Hi).
	// Hi == 0 means the full table. Out-of-range bounds are clipped.
	Lo int64 `json:",omitempty"`
	Hi int64 `json:",omitempty"`
	// Predicate carries an explicit column window; Selectivity (in
	// (0,1)) instead asks the server to draw an l_shipdate window
	// spanning that fraction of the date domain, the same discipline
	// the in-process serve sweep uses. Predicate wins if both are set.
	Predicate   *Predicate `json:",omitempty"`
	Selectivity float64    `json:",omitempty"`
	// Deadline arms an end-to-end deadline relative to arrival:
	// queries still queued past it time out with "admission-timeout",
	// executing ones are killed with "deadline-exceeded".
	Deadline Duration `json:",omitempty"`
}

// Outcome labels carried by QueryResult and ErrorReply. The lifecycle
// outcomes match rt.CancelCause.String().
const (
	OutcomeOK               = "ok"
	OutcomeClientCancel     = "client-cancel"
	OutcomeDeadlineExceeded = "deadline-exceeded"
	OutcomeAdmissionTimeout = "admission-timeout"
	OutcomeRejected         = "rejected"
	OutcomeDraining         = "draining"
)

// QueryResult is the final NDJSON line of a streamed response: the
// only object in the stream (every row is an array), so clients split
// on the first byte.
type QueryResult struct {
	Rows    int64
	Bytes   int64
	Tenant  int
	Outcome string
	// LatencyMS is arrival→finish, QueueWaitMS arrival→admission, both
	// on the server clock.
	LatencyMS   float64
	QueueWaitMS float64
	Error       string `json:",omitempty"`
}

// ErrorReply is the JSON body of a non-200 response.
type ErrorReply struct {
	Error   string
	Outcome string `json:",omitempty"`
}

// Update kinds accepted by PathUpdate.
const (
	KindInsert = "insert"
	KindDelete = "delete"
	KindModify = "modify"
)

// UpdateRequest is the POST body of PathUpdate: one update query. The
// positions and synthesized values are drawn server-side (the table's
// date domain lives there); the client chooses the kind and delta size.
type UpdateRequest struct {
	// Tenant pins the update's fairness domain, like QueryRequest.Tenant.
	Tenant *int `json:",omitempty"`
	// Kind is "insert", "delete" or "modify" (default "modify").
	Kind string `json:",omitempty"`
	// Batch is the number of delta operations the update applies in one
	// transaction — its delta size, which also prices it for admission
	// (default 1, clamped server-side).
	Batch int `json:",omitempty"`
	// Deadline arms an end-to-end deadline relative to arrival, like
	// QueryRequest.Deadline.
	Deadline Duration `json:",omitempty"`
}

// UpdateResult is the response body of an admitted update.
type UpdateResult struct {
	// Applied counts the delta operations the transaction committed
	// (deletes stopped by the table's deletion floor are not counted).
	Applied int
	Tenant  int
	Outcome string
	// Version is the store's commit epoch after the update; Pending the
	// committed-but-uncheckpointed delta count (the checkpoint trigger's
	// input); Checkpoints the completed checkpoint/merge cycles so far.
	Version     int64
	Pending     int64
	Checkpoints int
	LatencyMS   float64
	QueueWaitMS float64
	Error       string `json:",omitempty"`
}

// ServeStats is one serving measurement in the serve-table schema: the
// exact field set (and JSON names) of the in-process sweep's ServeRow,
// so `scanbench -json` files, /statz exports and scanload reports all
// parse with one type. See ServeRow in the root package for the field
// semantics.
type ServeStats struct {
	Rate         float64
	MPL          int
	Policy       string
	Shards       int
	Devices      int
	IOSched      string
	Tier         string
	Admission    string
	Completed    int64
	Rejected     int64
	TimedOut     int64
	Cancelled    int64
	ToPct        float64
	CanPct       float64
	Throughput   float64
	P50ms        float64
	P95ms        float64
	P99ms        float64
	QWaitP95ms   float64
	SLOPct       float64
	IOMB         float64
	Selectivity  float64
	SkipPct      float64
	ReadMBps     float64
	Seeks        int64
	Skew         float64
	Writes       int64
	WrQps        float64
	Checkpoints  int
	MergeP95ms   float64
	TenantP95ms  []float64
	TenantSLOPct []float64
}

// Statz is the PathStatz response: the live serve-table row plus
// server-level gauges.
type Statz struct {
	Version   string
	UptimeSec float64
	Draining  bool
	// Running and Queued are the scheduler's live gauges; Arrived and
	// DrainRejected its counters (DrainRejected counts admissions
	// refused because the server was draining — kept out of Rejected
	// so shutdown does not pollute the rejection stats).
	Running       int
	Queued        int
	Arrived       int64
	DrainRejected int64
	// NumTuples is the lineitem row count, the bound clients draw
	// Lo/Hi ranges against; Tenants the configured fairness domains.
	NumTuples int64
	Tenants   int
	Stats     ServeStats
}
