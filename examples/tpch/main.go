// TPC-H throughput: a small-scale version of the paper's §4.2 experiment.
// Streams of the 22-query mix run against a generated TPC-H-shaped
// database under each buffer-management policy, printing the two metrics
// of Figures 14–16: average stream time and total I/O volume, plus OPT's
// I/O from replaying the PBM trace.
package main

import (
	"fmt"

	scanshare "repro"
)

func main() {
	db := scanshare.GenerateTPCH(0.01, 7)
	fmt.Printf("generated TPC-H-shaped data: lineitem %d rows, orders %d rows\n\n",
		db.Snapshot("lineitem").NumTuples(), db.Snapshot("orders").NumTuples())

	fmt.Println("policy   avg stream (s)   total I/O (MB)")
	for _, policy := range []scanshare.Policy{scanshare.LRU, scanshare.PBM, scanshare.CScan} {
		cfg := scanshare.DefaultTPCHConfig()
		cfg.Policy = policy
		cfg.Streams = 4
		cfg.TraceForOPT = policy == scanshare.PBM
		res := scanshare.RunTPCHThroughput(db, cfg)
		fmt.Printf("%-8s %14.3f %16.1f\n", res.Policy, res.AvgStreamSec, float64(res.TotalIOBytes)/1e6)
		if policy == scanshare.PBM {
			fmt.Printf("%-8s %14s %16.1f   (Belady replay of the PBM trace)\n",
				"OPT", "-", float64(res.OPTIOBytes())/1e6)
		}
	}
}
