// Updates: the §2.1 machinery end to end. Trickle updates go into
// Positional Delta Trees under snapshot isolation; scans merge them on
// the fly (RID/SID translation); bulk appends create snapshots with
// shared page prefixes; a checkpoint migrates the PDTs to a fresh table
// version while old readers keep working.
package main

import (
	"errors"
	"fmt"

	scanshare "repro"
	"repro/internal/exec"
	"repro/internal/pdt"
)

func main() {
	sys := scanshare.NewSystem(scanshare.SystemConfig{Policy: scanshare.PBM, BufferBytes: 16 << 20})

	table, err := sys.Catalog.CreateTable("accounts", scanshare.Schema{
		{Name: "id", Type: scanshare.Int64, Width: 8},
		{Name: "balance", Type: scanshare.Float64, Width: 8},
	})
	if err != nil {
		panic(err)
	}
	const rows = 10_000
	data := scanshare.NewColumnData()
	ids := make([]int64, rows)
	bal := make([]float64, rows)
	for i := range ids {
		ids[i] = int64(i)
		bal[i] = 100
	}
	data.I64[0] = ids
	data.F64[1] = bal
	snap, err := table.Master().Append(data)
	if err != nil {
		panic(err)
	}
	if err := snap.Commit(); err != nil {
		panic(err)
	}

	store := scanshare.NewPDTStore(table)

	sys.Run(func() {
		// Two transactions: T1 commits first, T2 conflicts.
		t1 := store.Begin()
		t2 := store.Begin()
		t1.Modify(0, 1, scanshare.FloatVal(250)) // balance of row 0
		t1.Insert(rows, scanshare.Row{scanshare.IntVal(rows), scanshare.FloatVal(999)})
		t2.Delete(1)
		if err := t1.Commit(); err != nil {
			panic(err)
		}
		if err := t2.Commit(); !errors.Is(err, pdt.ErrTxConflict) {
			panic(fmt.Sprintf("expected conflict, got %v", err))
		}
		fmt.Println("T1 committed; T2 aborted with a write-write conflict (first committer wins)")

		// A scan merges the committed PDT state on the fly.
		sum := func() float64 {
			flat := store.Flattened(nil)
			res := exec.Collect(&exec.HashAggr{
				Child: sys.NewScan(store.Stable(), []int{1}, nil, flat),
				Aggs:  []exec.AggSpec{{Kind: exec.AggSum, Col: 0}, {Kind: exec.AggCount}},
			})
			fmt.Printf("scan sees %d rows, total balance %.0f\n", res.Vecs[1].I64[0], res.Vecs[0].F64[0])
			return res.Vecs[0].F64[0]
		}
		before := sum()

		// Checkpoint: PDT contents migrate to a new stable table version.
		oldVersion := table.Master().Version()
		if _, err := store.Checkpoint(); err != nil {
			panic(err)
		}
		fmt.Printf("checkpoint: table version %d -> %d, PDTs empty again\n",
			oldVersion, table.Master().Version())
		after := sum()
		if before != after {
			panic("checkpoint changed query results")
		}

		// Bulk appends: two concurrent appenders fork snapshots with a
		// shared page prefix; only one may commit (Figures 5/6).
		add := scanshare.NewColumnData()
		add.I64[0] = []int64{100001}
		add.F64[1] = []float64{1}
		sA, _ := table.Master().Append(add)
		sB, _ := table.Master().Append(add)
		shared := sA.SharedPrefixTuples(sB)
		fmt.Printf("concurrent appends share a %d-tuple page prefix\n", shared)
		if err := sA.Commit(); err != nil {
			panic(err)
		}
		if err := sB.Commit(); err == nil {
			panic("second append committed without conflict")
		} else {
			fmt.Println("second appender aborted:", err)
		}
	})
}
