// Quickstart: create a simulated analytical database with Predictive
// Buffer Management, load a table, run a filtered aggregation twice, and
// watch the buffer manager turn the second run into cache hits.
package main

import (
	"fmt"

	scanshare "repro"
	"repro/internal/exec"
	"repro/internal/storage"
)

func main() {
	sys := scanshare.NewSystem(scanshare.SystemConfig{
		Policy:      scanshare.PBM,
		BufferBytes: 8 << 20, // 8 MiB pool
		BandwidthMB: 400,
	})

	// Define and load a sales table: 200k rows of (region, amount).
	table, err := sys.Catalog.CreateTable("sales", scanshare.Schema{
		{Name: "region", Type: scanshare.Int64, Width: 1},
		{Name: "amount", Type: scanshare.Float64, Width: 4},
	})
	if err != nil {
		panic(err)
	}
	const rows = 200_000
	data := scanshare.NewColumnData()
	regions := make([]int64, rows)
	amounts := make([]float64, rows)
	for i := range regions {
		regions[i] = int64(i % 5)
		amounts[i] = float64(i%1000) / 10
	}
	data.I64[0] = regions
	data.F64[1] = amounts
	snap, err := table.Master().Append(data)
	if err != nil {
		panic(err)
	}
	if err := snap.Commit(); err != nil {
		panic(err)
	}

	query := func() *exec.Batch {
		// SELECT region, sum(amount), count(*) FROM sales
		// WHERE amount > 50 GROUP BY region
		plan := &exec.HashAggr{
			Child: &exec.Select{
				Child: sys.NewScan(snap, []int{0, 1}, nil, nil),
				Pred:  exec.NewCmp(">", exec.Col{Idx: 1, T: storage.Float64}, exec.ConstF(50)),
			},
			Groups: []int{0},
			Aggs:   []exec.AggSpec{{Kind: exec.AggSum, Col: 1}, {Kind: exec.AggCount}},
		}
		return exec.Collect(plan)
	}

	sys.Run(func() {
		t0 := sys.Now()
		res := query()
		cold := sys.Now() - t0
		fmt.Println("region  sum(amount)  count")
		for i := 0; i < res.N; i++ {
			fmt.Printf("%6d  %11.1f  %5d\n", res.Vecs[0].I64[i], res.Vecs[1].F64[i], res.Vecs[2].I64[i])
		}
		coldIO := sys.IOBytes()

		t1 := sys.Now()
		query()
		warm := sys.Now() - t1
		fmt.Printf("\ncold run: %v (%d KB read)\n", cold, coldIO/1024)
		fmt.Printf("warm run: %v (%d KB read) — the pool served it\n",
			warm, (sys.IOBytes()-coldIO)/1024)
	})
}
