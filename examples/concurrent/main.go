// Concurrent scans: the paper's problem statement in miniature. Eight
// query streams scan overlapping ranges of one table through a buffer
// pool half the table's size, under LRU, PBM and Cooperative Scans, and
// the example prints the resulting stream times and I/O volumes —
// reproducing the headline effect of Figure 11 at a glance.
package main

import (
	"fmt"
	"math/rand"
	"time"

	scanshare "repro"
	"repro/internal/exec"
)

const (
	rows    = 400_000
	streams = 8
	queries = 6 // per stream
)

func main() {
	fmt.Println("policy   avg stream time   total I/O")
	for _, policy := range []scanshare.Policy{scanshare.LRU, scanshare.PBM, scanshare.CScan} {
		avg, io := run(policy)
		fmt.Printf("%-8s %15v %8.1f MB\n", policy, avg.Round(time.Millisecond), float64(io)/1e6)
	}
}

// run executes the workload under one policy and reports the average
// stream completion time and total bytes read.
func run(policy scanshare.Policy) (time.Duration, int64) {
	sys := scanshare.NewSystem(scanshare.SystemConfig{
		Policy:      policy,
		BufferBytes: rows * 13 / 2, // ~half the 13 B/row table
		BandwidthMB: 300,
		PerTupleCPU: 40 * time.Nanosecond,
	})
	table, err := sys.Catalog.CreateTable("events", scanshare.Schema{
		{Name: "ts", Type: scanshare.Int64, Width: 4},
		{Name: "kind", Type: scanshare.Int64, Width: 1},
		{Name: "value", Type: scanshare.Float64, Width: 8},
	})
	if err != nil {
		panic(err)
	}
	data := scanshare.NewColumnData()
	ts := make([]int64, rows)
	kind := make([]int64, rows)
	val := make([]float64, rows)
	for i := range ts {
		ts[i] = int64(i)
		kind[i] = int64(i % 7)
		val[i] = float64(i%97) * 1.5
	}
	data.I64[0] = ts
	data.I64[1] = kind
	data.F64[2] = val
	snap, err := table.Master().Append(data)
	if err != nil {
		panic(err)
	}
	if err := snap.Commit(); err != nil {
		panic(err)
	}

	var total time.Duration
	done := 0
	sys.Run(func() {
		wg := sys.NewWaitGroup()
		for s := 0; s < streams; s++ {
			s := s
			rng := rand.New(rand.NewSource(int64(s) + 1))
			wg.Add(1)
			sys.Go("stream", func() {
				defer wg.Done()
				for q := 0; q < queries; q++ {
					// Scan a random 50% range and aggregate value by kind.
					span := int64(rows / 2)
					start := rng.Int63n(rows - span)
					plan := &exec.HashAggr{
						Child:  sys.NewScan(snap, []int{1, 2}, []scanshare.RIDRange{{Lo: start, Hi: start + span}}, nil),
						Groups: []int{0},
						Aggs:   []exec.AggSpec{{Kind: exec.AggSum, Col: 1}},
					}
					exec.Drain(plan)
				}
				total += sys.Now()
				done++
			})
		}
		wg.Wait()
	})
	return total / time.Duration(done), sys.IOBytes()
}
