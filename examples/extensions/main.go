// Extensions: the paper's §5 future-work ideas, side by side. A leading
// scan and a trailing scan share a table through a pool a quarter of the
// table's size, under four scan strategies:
//
//   - plain in-order Scan (the baseline every policy uses),
//   - AttachScan: the classic circular-scan "attach" of SQLServer/
//     RedBrick — the trailer jumps to the leader's position and wraps,
//   - OScan: opportunistic CScans — each scan independently gravitates
//     to the most-cached region, cooperating without a central planner,
//   - Scan+throttle: PBM advises the leader to slow down when its pages
//     would be evicted before the trailer reuses them.
package main

import (
	"fmt"
	"time"

	scanshare "repro"
	"repro/internal/exec"
	"repro/internal/pbm"
)

const rows = 300_000

func main() {
	fmt.Println("strategy        total I/O     makespan")
	for _, mode := range []string{"plain", "attach", "oscan", "throttle"} {
		io, span := run(mode)
		fmt.Printf("%-12s %8.1f MB %12v\n", mode, float64(io)/1e6, span.Round(time.Millisecond))
	}
	fmt.Println("\n(two scans, pool = 25% of table; lower I/O = better sharing)")
}

func run(mode string) (int64, time.Duration) {
	sys := scanshare.NewSystem(scanshare.SystemConfig{
		Policy:      scanshare.PBM,
		BufferBytes: rows * 8 / 4, // quarter of the 8 B/row column
		BandwidthMB: 200,
	})
	if mode == "throttle" {
		tc := pbm.DefaultThrottleConfig()
		tc.Enabled = true
		sys.PBM.SetThrottle(tc)
	}
	table, err := sys.Catalog.CreateTable("t", scanshare.Schema{
		{Name: "v", Type: scanshare.Int64, Width: 8},
	})
	if err != nil {
		panic(err)
	}
	data := scanshare.NewColumnData()
	data.I64[0] = make([]int64, rows)
	snap, err := table.Master().Append(data)
	if err != nil {
		panic(err)
	}
	if err := snap.Commit(); err != nil {
		panic(err)
	}
	registry := exec.NewAttachRegistry()

	newScan := func() exec.Operator {
		switch mode {
		case "attach":
			return &exec.AttachScan{Ctx: sys.Ctx, Snap: snap, Cols: []int{0}, Registry: registry}
		case "oscan":
			return &exec.OScan{Ctx: sys.Ctx, Snap: snap, Cols: []int{0},
				Ranges: []scanshare.RIDRange{{Lo: 0, Hi: rows}}, SectionTuples: 8192}
		default:
			return &exec.Scan{Ctx: sys.Ctx, Snap: snap, Cols: []int{0},
				Ranges: []scanshare.RIDRange{{Lo: 0, Hi: rows}}}
		}
	}
	sys.Run(func() {
		wg := sys.NewWaitGroup()
		scan := func(delay time.Duration) {
			defer wg.Done()
			sys.Eng.Sleep(delay)
			op := newScan()
			op.Open()
			for b := op.Next(); b != nil; b = op.Next() {
				sys.Eng.Sleep(100 * time.Microsecond) // processing cost
			}
			op.Close()
		}
		wg.Add(2)
		sys.Go("lead", func() { scan(0) })
		sys.Go("trail", func() { scan(120 * time.Millisecond) })
		wg.Wait()
	})
	return sys.IOBytes(), sys.Now()
}
