package scanshare

import (
	"repro/internal/sched"
	"repro/internal/workload"
	"repro/wire"
)

// Bridges between the library surface, the scanbench command line and
// the wire schema: the axis declaration the binaries share, the
// ServeRow→wire.ServeStats conversion, and the arrival/percentile
// helpers a load generator needs to reproduce the sweep's discipline.

// ServeAxes declares the full serving axis surface of the scanbench
// command line once: RegisterFlags binds the flags, Parse validates,
// and the scope helpers say which set flags a mode must reject — one
// declaration instead of per-mode rejection lists.
type ServeAxes = workload.ServeAxes

// ServingEngine is the long-lived serving surface behind cmd/scanserved:
// the sweep's per-run wiring held open so a network front end can
// admit, plan and execute queries for the life of a process.
type ServingEngine = workload.ServeEngine

// NewServingEngine builds a serving engine over the generated database;
// the config's Real flag is forced on.
func NewServingEngine(db *TPCHDB, cfg ServeConfig) *ServingEngine {
	return workload.NewServeEngine(db, cfg)
}

// ParsePolicy parses a buffer-management policy name ("lru", "mru",
// "clock", "pbm", "pbm-lru", "cscans"), case-insensitively.
func ParsePolicy(name string) (Policy, bool) { return workload.ParsePolicy(name) }

// BufferPolicies lists the buffer-management policies in menu order.
func BufferPolicies() []Policy { return workload.Policies() }

// ExpInterarrival draws one exponential interarrival gap at the given
// rate — re-exported so external load generators (cmd/scanload) share
// the serving sweep's Poisson arrival discipline draw for draw.
var ExpInterarrival = sched.ExpInterarrival

// Percentile reports the nearest-rank p-quantile of a duration sample,
// the same estimator the scheduler's latency report uses.
var Percentile = sched.Percentile

// NewServeOptions materializes the serving-sweep options from the base
// run options and the parsed command-line axes.
func NewServeOptions(base Options, a ServeAxes, real bool) ServeOptions {
	o := ServeOptions{
		Options:           base,
		Rates:             a.Rates,
		MPLs:              a.MPLs,
		Shards:            a.Shards,
		Devices:           a.Devices,
		StripeChunk:       a.StripeChunk,
		IOSchedulers:      a.IOSchedulers,
		Tiers:             a.Tiers,
		StripeRowRA:       a.StripeRowRA,
		IOPriority:        a.IOPriority,
		HotFrac:           a.HotFrac,
		HotProb:           a.HotProb,
		AdmissionPolicies: a.AdmissionPolicies,
		Tenants:           a.Tenants,
		TenantWeights:     a.TenantWeights,
		Selectivities:     a.Selectivities,
		Clustered:         a.Clustered,
		QueueDepth:        a.QueueDepth,
		SLO:               a.SLO,
		Deadline:          a.Deadline,
		CancelRate:        a.CancelRate,
		WriteFrac:         a.WriteFrac,
		CheckpointOps:     a.CheckpointOps,
		Real:              real,
	}
	// The per-run overrides must not fight the sweep's own axes.
	o.Options.PoolShards = 0
	o.Options.Devices = 0
	return o
}

// NewCompareOptions materializes the closed-vs-open-loop comparison
// options from the base run options and the parsed axes; multi-valued
// axes contribute their first element.
func NewCompareOptions(base Options, a ServeAxes, real bool) CompareOptions {
	co := DefaultCompareOptions()
	co.Options = base
	co.Options.PoolShards = 0
	co.Real = real
	if len(a.Rates) > 0 {
		co.Rate = a.Rates[0]
	}
	if len(a.MPLs) > 0 {
		co.MPL = a.MPLs[0]
	}
	if len(a.Shards) > 0 {
		co.Shards = a.Shards[0]
	}
	if len(a.Devices) > 0 {
		co.Devices = a.Devices[0]
	}
	co.StripeChunk = a.StripeChunk
	if len(a.AdmissionPolicies) > 0 {
		co.Admission = a.AdmissionPolicies[0]
	}
	co.Tenants = a.Tenants
	co.TenantWeights = a.TenantWeights
	co.QueueDepth = a.QueueDepth
	co.SLO = a.SLO
	return co
}

// NewServeEngineConfig materializes one serving configuration — a
// single cell rather than a sweep — from the base options and the
// parsed axes; multi-valued axes contribute their first element.
// cmd/scanserved uses it so the server's knobs are exactly scanbench's.
// A tiered first element maps to "tiered-rr" placement ("tiered-temp"
// needs a profiling pass a live server does not have).
func NewServeEngineConfig(base Options, a ServeAxes) ServeConfig {
	cfg := DefaultServeConfig()
	cfg.Config = base.fill().apply(cfg.Config)
	if len(a.MPLs) > 0 {
		cfg.MPL = a.MPLs[0]
	}
	if len(a.Shards) > 0 {
		cfg.PoolShards = a.Shards[0]
	}
	if len(a.Devices) > 0 {
		cfg.Config.Devices = a.Devices[0]
	}
	if a.StripeChunk > 0 {
		cfg.Config.StripeChunk = a.StripeChunk
	}
	if len(a.IOSchedulers) > 0 && a.IOSchedulers[0] != "fifo" {
		cfg.Config.IOScheduler = a.IOSchedulers[0]
	}
	if len(a.Tiers) > 0 && a.Tiers[0] != "flat" {
		fd := cfg.Config.Devices / 2
		if fd < 1 {
			fd = 1
		}
		cfg.Config.FastDevices = fd
	}
	cfg.Config.StripeRowRA = a.StripeRowRA
	cfg.IOPriority = a.IOPriority
	if len(a.AdmissionPolicies) > 0 {
		cfg.AdmissionPolicy = a.AdmissionPolicies[0]
	}
	cfg.Tenants = a.Tenants
	cfg.TenantWeights = a.TenantWeights
	if a.QueueDepth != 0 {
		cfg.QueueDepth = a.QueueDepth
	}
	if a.SLO != 0 {
		cfg.SLO = a.SLO
	}
	// -writefrac shapes client traffic (scanload draws the write coin);
	// -ckptops shapes the server's checkpoint trigger.
	cfg.CheckpointOps = a.CheckpointOps
	return cfg
}

// Wire converts the row to its wire-schema form, the JSON shape shared
// by `scanbench -json`, scanserved's /statz and scanload's reports.
// The two types are field-for-field identical; this copy is where the
// compiler enforces that the schema never drifts from the sweep row.
func (r ServeRow) Wire() wire.ServeStats {
	return wire.ServeStats{
		Rate:         r.Rate,
		MPL:          r.MPL,
		Policy:       r.Policy,
		Shards:       r.Shards,
		Devices:      r.Devices,
		IOSched:      r.IOSched,
		Tier:         r.Tier,
		Admission:    r.Admission,
		Completed:    r.Completed,
		Rejected:     r.Rejected,
		TimedOut:     r.TimedOut,
		Cancelled:    r.Cancelled,
		ToPct:        r.ToPct,
		CanPct:       r.CanPct,
		Throughput:   r.Throughput,
		P50ms:        r.P50ms,
		P95ms:        r.P95ms,
		P99ms:        r.P99ms,
		QWaitP95ms:   r.QWaitP95ms,
		SLOPct:       r.SLOPct,
		IOMB:         r.IOMB,
		Selectivity:  r.Selectivity,
		SkipPct:      r.SkipPct,
		ReadMBps:     r.ReadMBps,
		Seeks:        r.Seeks,
		Skew:         r.Skew,
		Writes:       r.Writes,
		WrQps:        r.WrQps,
		Checkpoints:  r.Checkpoints,
		MergeP95ms:   r.MergeP95ms,
		TenantP95ms:  r.TenantP95ms,
		TenantSLOPct: r.TenantSLOPct,
	}
}

// WireRows converts a sweep's rows to the wire schema in one call
// (scanbench's -json writer).
func WireRows(rows []ServeRow) []wire.ServeStats {
	out := make([]wire.ServeStats, len(rows))
	for i, r := range rows {
		out[i] = r.Wire()
	}
	return out
}
