package scanshare

import (
	"fmt"
	"testing"

	"repro/internal/workload"
)

// Benchmarks: one per table/figure of the paper's evaluation (§4). Each
// regenerates the corresponding experiment at a reduced scale so the
// whole suite completes quickly; `cmd/scanbench` runs the full sweeps.
// The benchmarked quantity is the wall-clock cost of simulating the
// experiment; the experiment's own metrics (virtual stream time, I/O
// volume) are reported as custom benchmark metrics.

// skipIfShort keeps `go test -short -bench .` fast: the benchmarks each
// simulate a full experiment sweep, which is the "full" half of the
// fast/full test split (see README).
func skipIfShort(b *testing.B) {
	b.Helper()
	if testing.Short() {
		b.Skip("skipping experiment-sweep benchmark in -short mode")
	}
}

// benchOptions returns reduced-scale options for benchmark runs.
func benchOptions() Options {
	return Options{
		SF:               0.008,
		Seed:             42,
		Streams:          4,
		QueriesPerStream: 6,
		ThreadsPerQuery:  4,
	}
}

func report(b *testing.B, rows []SweepRow) {
	b.Helper()
	var io, t float64
	for _, r := range rows {
		io += r.IOMB
		t += r.AvgStreamSec
	}
	b.ReportMetric(io, "sim-IO-MB")
	b.ReportMetric(t, "sim-stream-s")
}

func BenchmarkFig11MicroBufferSweep(b *testing.B) {
	skipIfShort(b)
	for i := 0; i < b.N; i++ {
		report(b, Fig11(benchOptions()))
	}
}

func BenchmarkFig12MicroBandwidthSweep(b *testing.B) {
	skipIfShort(b)
	for i := 0; i < b.N; i++ {
		report(b, Fig12(benchOptions()))
	}
}

func BenchmarkFig13MicroStreamSweep(b *testing.B) {
	skipIfShort(b)
	o := benchOptions()
	o.Streams = 0 // the sweep sets stream counts itself
	for i := 0; i < b.N; i++ {
		report(b, Fig13(o))
	}
}

func BenchmarkFig14TPCHBufferSweep(b *testing.B) {
	skipIfShort(b)
	o := benchOptions()
	o.QueriesPerStream = 8
	for i := 0; i < b.N; i++ {
		report(b, Fig14(o))
	}
}

func BenchmarkFig15TPCHBandwidthSweep(b *testing.B) {
	skipIfShort(b)
	o := benchOptions()
	o.QueriesPerStream = 8
	for i := 0; i < b.N; i++ {
		report(b, Fig15(o))
	}
}

func BenchmarkFig16TPCHStreamSweep(b *testing.B) {
	skipIfShort(b)
	o := benchOptions()
	o.Streams = 0
	o.QueriesPerStream = 8
	for i := 0; i < b.N; i++ {
		report(b, Fig16(o))
	}
}

func BenchmarkFig17MicroSharingPotential(b *testing.B) {
	skipIfShort(b)
	for i := 0; i < b.N; i++ {
		rows := Fig17(benchOptions())
		var mbTotal float64
		for _, r := range rows {
			mbTotal += r.MB[0] + r.MB[1] + r.MB[2] + r.MB[3]
		}
		b.ReportMetric(mbTotal/float64(len(rows)+1), "avg-wanted-MB")
	}
}

func BenchmarkFig18TPCHSharingPotential(b *testing.B) {
	skipIfShort(b)
	o := benchOptions()
	o.QueriesPerStream = 8
	for i := 0; i < b.N; i++ {
		rows := Fig18(o)
		var mbTotal float64
		for _, r := range rows {
			mbTotal += r.MB[0] + r.MB[1] + r.MB[2] + r.MB[3]
		}
		b.ReportMetric(mbTotal/float64(len(rows)+1), "avg-wanted-MB")
	}
}

// Ablation benches: design choices DESIGN.md calls out.

// BenchmarkAblationPolicyMicro compares every policy (including the
// MRU/Clock baselines and the PBM/LRU future-work variant) at the
// default microbenchmark point.
func BenchmarkAblationPolicyMicro(b *testing.B) {
	skipIfShort(b)
	db := GenerateTPCH(0.008, 42)
	for _, pol := range []Policy{LRU, MRU, Clock, PBM, PBMLRU, CScan} {
		pol := pol
		b.Run(pol.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := workload.DefaultMicroConfig()
				cfg.Policy = pol
				cfg.Streams = 4
				cfg.QueriesPerStream = 6
				cfg.ThreadsPerQuery = 4
				res := workload.RunMicro(db, cfg)
				b.ReportMetric(float64(res.TotalIOBytes)/1e6, "sim-IO-MB")
				b.ReportMetric(res.AvgStreamSec, "sim-stream-s")
			}
		})
	}
}

// BenchmarkAblationChunkSize varies the Cooperative Scans chunk
// granularity (the §2 design choice: big chunks preserve locality, small
// chunks reduce skew).
func BenchmarkAblationChunkSize(b *testing.B) {
	skipIfShort(b)
	db := GenerateTPCH(0.008, 42)
	for _, chunk := range []int64{512, 2048, 8192} {
		chunk := chunk
		b.Run(fmt.Sprintf("chunk%d", chunk), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := workload.DefaultMicroConfig()
				cfg.Policy = CScan
				cfg.Streams = 4
				cfg.QueriesPerStream = 6
				cfg.ThreadsPerQuery = 4
				cfg.ChunkTuples = chunk
				res := workload.RunMicro(db, cfg)
				b.ReportMetric(float64(res.TotalIOBytes)/1e6, "sim-IO-MB")
			}
		})
	}
}

// BenchmarkAblationThrottle compares plain PBM against the §5
// attach&throttle extension at the paper-identified weak point: extreme
// memory pressure with maximal sharing potential.
func BenchmarkAblationThrottle(b *testing.B) {
	skipIfShort(b)
	db := GenerateTPCH(0.008, 42)
	for _, throttle := range []bool{false, true} {
		throttle := throttle
		name := "plain"
		if throttle {
			name = "throttled"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := workload.DefaultMicroConfig()
				cfg.Policy = PBM
				cfg.Streams = 6
				cfg.QueriesPerStream = 4
				cfg.ThreadsPerQuery = 1
				cfg.BufferFrac = 0.1
				cfg.RangePercents = []int{100}
				cfg.Throttle = throttle
				res := workload.RunMicro(db, cfg)
				b.ReportMetric(float64(res.TotalIOBytes)/1e6, "sim-IO-MB")
				b.ReportMetric(res.AvgStreamSec, "sim-stream-s")
			}
		})
	}
}

// BenchmarkAblationReadAhead sweeps the Scan operator's per-column
// read-ahead window — the knob that trades sequential locality against
// pool churn.
func BenchmarkAblationReadAhead(b *testing.B) {
	skipIfShort(b)
	db := GenerateTPCH(0.008, 42)
	for _, pol := range []Policy{LRU, PBM} {
		pol := pol
		b.Run(pol.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := workload.DefaultMicroConfig()
				cfg.Policy = pol
				cfg.Streams = 4
				cfg.QueriesPerStream = 6
				cfg.ThreadsPerQuery = 2
				res := workload.RunMicro(db, cfg)
				b.ReportMetric(res.AvgStreamSec, "sim-stream-s")
			}
		})
	}
}
