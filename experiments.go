package scanshare

import (
	"time"

	"repro/internal/workload"
)

// Options parameterizes the figure-regeneration experiments.
type Options struct {
	// SF is the TPC-H scale factor of the generated data (default 0.05;
	// the paper uses 30 GB — shapes are scale-free, see DESIGN.md).
	SF float64
	// Seed drives data generation and workload randomness.
	Seed int64
	// Streams/QueriesPerStream/ThreadsPerQuery/Cores override the §4
	// defaults when nonzero.
	Streams          int
	QueriesPerStream int
	ThreadsPerQuery  int
	Cores            int
	// PerTupleCPU overrides the calibrated per-tuple CPU cost.
	PerTupleCPU time.Duration
	// PoolShards overrides the buffer-pool shard count when nonzero
	// (figure experiments default to the paper's single pool; the serve
	// sweep has its own shard axis, see ServeOptions.Shards).
	PoolShards int
	// Devices overrides the disk-array spindle count when nonzero (figure
	// experiments default to the paper's single device; the serve sweep
	// has its own devices axis, see ServeOptions.Devices).
	Devices int
	// StripeChunk overrides the array striping granularity in blocks when
	// nonzero; meaningful only with Devices > 1.
	StripeChunk int
}

// DefaultOptions returns the experiment defaults.
func DefaultOptions() Options {
	return Options{SF: 0.05, Seed: 42}
}

func (o Options) fill() Options {
	d := DefaultOptions()
	if o.SF <= 0 {
		o.SF = d.SF
	}
	if o.Seed == 0 {
		o.Seed = d.Seed
	}
	return o
}

func (o Options) apply(cfg workload.Config) workload.Config {
	cfg.Seed = o.Seed
	if o.Streams > 0 {
		cfg.Streams = o.Streams
	}
	if o.QueriesPerStream > 0 {
		cfg.QueriesPerStream = o.QueriesPerStream
	}
	if o.ThreadsPerQuery > 0 {
		cfg.ThreadsPerQuery = o.ThreadsPerQuery
	}
	if o.Cores > 0 {
		cfg.Cores = o.Cores
	}
	if o.PerTupleCPU > 0 {
		cfg.PerTupleCPU = o.PerTupleCPU
	}
	if o.PoolShards > 0 {
		cfg.PoolShards = o.PoolShards
	}
	if o.Devices > 0 {
		cfg.Devices = o.Devices
	}
	if o.StripeChunk > 0 {
		cfg.StripeChunk = o.StripeChunk
	}
	return cfg
}

// SweepRow is one measurement of a figure's series: x-axis value, policy,
// average stream time, and total I/O volume. OPT rows carry I/O only
// (per §4, OPT is simulated on the PBM run's reference trace).
type SweepRow struct {
	X            float64
	Policy       string
	AvgStreamSec float64
	IOMB         float64
}

// SharingRow is one time-sample of the sharing-potential analysis
// (Figures 17/18): megabytes of data currently wanted by exactly 1, 2, 3
// and >=4 concurrent scans.
type SharingRow struct {
	TimeSec float64
	MB      [4]float64
}

// sweepPolicies are the series of Figures 11–16: LRU and the two
// scan-sharing approaches; OPT is derived from the PBM trace.
var sweepPolicies = []Policy{LRU, CScan, PBM}

// runMicroPoint runs all policies at one microbenchmark configuration and
// appends rows (including the OPT row) to out.
func runMicroPoint(db *TPCHDB, cfg workload.Config, x float64, out []SweepRow) []SweepRow {
	for _, pol := range sweepPolicies {
		c := cfg
		c.Policy = pol
		c.TraceForOPT = pol == PBM
		res := workload.RunMicro(db, c)
		out = append(out, SweepRow{X: x, Policy: pol.String(),
			AvgStreamSec: res.AvgStreamSec, IOMB: mb(res.TotalIOBytes)})
		if pol == PBM {
			out = append(out, SweepRow{X: x, Policy: "OPT", IOMB: mb(res.OPTIOBytes())})
		}
	}
	return out
}

func runTPCHPoint(db *TPCHDB, cfg workload.Config, x float64, out []SweepRow) []SweepRow {
	for _, pol := range sweepPolicies {
		c := cfg
		c.Policy = pol
		c.TraceForOPT = pol == PBM
		res := workload.RunTPCH(db, c)
		out = append(out, SweepRow{X: x, Policy: pol.String(),
			AvgStreamSec: res.AvgStreamSec, IOMB: mb(res.TotalIOBytes)})
		if pol == PBM {
			out = append(out, SweepRow{X: x, Policy: "OPT", IOMB: mb(res.OPTIOBytes())})
		}
	}
	return out
}

func mb(b int64) float64 { return float64(b) / 1e6 }

// BufferFracs is the x-axis of Figures 11 and 14 (fraction of the
// accessed data volume). The paper sweeps 10–100%; the default grid
// skips the 10% corner, where simulated I/O amplification makes runs
// take tens of minutes — pass a custom Options-driven run for it.
var BufferFracs = []float64{0.2, 0.4, 0.6, 1.0}

// Bandwidths is the x-axis of Figures 12 and 15, in MB/s.
var Bandwidths = []float64{200, 400, 700, 1400, 2000}

// MicroStreams is the x-axis of Figure 13. The paper sweeps to 32;
// the default grid stops at 8 to keep the sweep fast (the recorded
// scanbench_output.txt session includes a full 1–32 run).
var MicroStreams = []int{1, 2, 4, 8}

// TPCHStreams is the x-axis of Figure 16 (the paper tops out at 24).
var TPCHStreams = []int{1, 2, 4, 8}

// Fig11 regenerates Figure 11: microbenchmark average stream time and
// total I/O volume as the buffer pool shrinks from 100% to 10% of the
// accessed data.
func Fig11(o Options) []SweepRow {
	o = o.fill()
	db := GenerateTPCH(o.SF, o.Seed)
	var out []SweepRow
	for _, frac := range BufferFracs {
		cfg := o.apply(workload.DefaultMicroConfig())
		cfg.BufferFrac = frac
		out = runMicroPoint(db, cfg, frac*100, out)
	}
	return out
}

// Fig12 regenerates Figure 12: the microbenchmark under varying I/O
// bandwidth at a 40% buffer pool.
func Fig12(o Options) []SweepRow {
	o = o.fill()
	db := GenerateTPCH(o.SF, o.Seed)
	var out []SweepRow
	for _, bw := range Bandwidths {
		cfg := o.apply(workload.DefaultMicroConfig())
		cfg.BandwidthMB = bw
		out = runMicroPoint(db, cfg, bw, out)
	}
	return out
}

// Fig13 regenerates Figure 13: the microbenchmark with 1–32 concurrent
// streams, all queries scanning 50% of the table (homogeneous streams).
func Fig13(o Options) []SweepRow {
	o = o.fill()
	db := GenerateTPCH(o.SF, o.Seed)
	var out []SweepRow
	for _, n := range MicroStreams {
		cfg := o.apply(workload.DefaultMicroConfig())
		cfg.Streams = n
		cfg.RangePercents = []int{50}
		out = runMicroPoint(db, cfg, float64(n), out)
	}
	return out
}

// Fig14 regenerates Figure 14: the TPC-H throughput run under varying
// buffer pool size.
func Fig14(o Options) []SweepRow {
	o = o.fill()
	db := GenerateTPCH(o.SF, o.Seed)
	var out []SweepRow
	for _, frac := range BufferFracs {
		cfg := o.apply(workload.DefaultTPCHConfig())
		cfg.BufferFrac = frac
		out = runTPCHPoint(db, cfg, frac*100, out)
	}
	return out
}

// Fig15 regenerates Figure 15: the TPC-H throughput run under varying
// I/O bandwidth at a 30% buffer pool.
func Fig15(o Options) []SweepRow {
	o = o.fill()
	db := GenerateTPCH(o.SF, o.Seed)
	var out []SweepRow
	for _, bw := range Bandwidths {
		cfg := o.apply(workload.DefaultTPCHConfig())
		cfg.BandwidthMB = bw
		out = runTPCHPoint(db, cfg, bw, out)
	}
	return out
}

// Fig16 regenerates Figure 16: the TPC-H throughput run with 1–24
// concurrent streams.
func Fig16(o Options) []SweepRow {
	o = o.fill()
	db := GenerateTPCH(o.SF, o.Seed)
	var out []SweepRow
	for _, n := range TPCHStreams {
		cfg := o.apply(workload.DefaultTPCHConfig())
		cfg.Streams = n
		out = runTPCHPoint(db, cfg, float64(n), out)
	}
	return out
}

// Fig17 regenerates Figure 17: the sharing-potential time series of the
// microbenchmark (volume of data wanted by exactly k concurrent scans).
func Fig17(o Options) []SharingRow {
	o = o.fill()
	db := GenerateTPCH(o.SF, o.Seed)
	cfg := o.apply(workload.DefaultMicroConfig())
	cfg.Policy = PBM
	cfg.SharingSampler = 5 * time.Millisecond
	res := workload.RunMicro(db, cfg)
	return sharingRows(res)
}

// Fig18 regenerates Figure 18: the sharing potential of the TPC-H
// throughput run.
func Fig18(o Options) []SharingRow {
	o = o.fill()
	db := GenerateTPCH(o.SF, o.Seed)
	cfg := o.apply(workload.DefaultTPCHConfig())
	cfg.Policy = PBM
	cfg.SharingSampler = 5 * time.Millisecond
	res := workload.RunTPCH(db, cfg)
	return sharingRows(res)
}

func sharingRows(res *Result) []SharingRow {
	out := make([]SharingRow, 0, len(res.Sharing))
	for _, s := range res.Sharing {
		var r SharingRow
		r.TimeSec = s.T.Seconds()
		for i, b := range s.Bytes {
			r.MB[i] = mb(b)
		}
		out = append(out, r)
	}
	return out
}

// AblationRow reports one policy variant at the default experiment
// point.
type AblationRow struct {
	Variant      string
	AvgStreamSec float64
	IOMB         float64
}

// Ablation runs every policy variant — the paper's three plus the
// MRU/Clock baselines, the PBM/LRU extension and PBM with §5
// attach&throttle — at the default microbenchmark point.
func Ablation(o Options) []AblationRow {
	o = o.fill()
	db := GenerateTPCH(o.SF, o.Seed)
	var out []AblationRow
	run := func(name string, cfg workload.Config) {
		res := workload.RunMicro(db, cfg)
		out = append(out, AblationRow{Variant: name,
			AvgStreamSec: res.AvgStreamSec, IOMB: mb(res.TotalIOBytes)})
	}
	for _, pol := range []Policy{LRU, MRU, Clock, PBM, PBMLRU, CScan} {
		cfg := o.apply(workload.DefaultMicroConfig())
		cfg.Policy = pol
		run(pol.String(), cfg)
	}
	cfg := o.apply(workload.DefaultMicroConfig())
	cfg.Policy = PBM
	cfg.Throttle = true
	run("PBM+throttle", cfg)
	return out
}

// RunMicrobenchmark exposes the §4.1 driver directly.
func RunMicrobenchmark(db *TPCHDB, cfg Config) *Result { return workload.RunMicro(db, cfg) }

// RunTPCHThroughput exposes the §4.2 driver directly.
func RunTPCHThroughput(db *TPCHDB, cfg Config) *Result { return workload.RunTPCH(db, cfg) }

// DefaultMicroConfig re-exports the §4.1 defaults.
func DefaultMicroConfig() Config { return workload.DefaultMicroConfig() }

// DefaultTPCHConfig re-exports the §4.2 defaults.
func DefaultTPCHConfig() Config { return workload.DefaultTPCHConfig() }
