// Package scanshare is the public API of this reproduction of
// "From Cooperative Scans to Predictive Buffer Management" (Świtakowski,
// Boncz, Żukowski; PVLDB 5(12), 2012).
//
// It exposes the simulated analytical engine — columnar storage, PDT
// differential updates, a traditional buffer manager with pluggable
// policies (LRU/MRU/Clock and Predictive Buffer Management), Cooperative
// Scans with an Active Buffer Manager, and a vectorized executor — plus
// experiment runners that regenerate every figure of the paper's
// evaluation (Figures 11–18).
//
// The heavy lifting lives in internal packages; this package re-exports
// the stable surface via aliases and provides System, a convenience
// wrapper wiring a full simulated instance together.
package scanshare

import (
	"time"

	"repro/internal/abm"
	"repro/internal/buffer"
	"repro/internal/exec"
	"repro/internal/iosim"
	"repro/internal/pbm"
	"repro/internal/pdt"
	"repro/internal/rt"
	"repro/internal/sim"
	"repro/internal/storage"
	"repro/internal/tpch"
	"repro/internal/workload"
)

// Re-exported core types: the storage and execution surface a downstream
// user programs against.
type (
	// Catalog owns tables and snapshots.
	Catalog = storage.Catalog
	// Schema describes table columns.
	Schema = storage.Schema
	// ColumnDef is one column definition.
	ColumnDef = storage.ColumnDef
	// ColumnData is bulk-load input.
	ColumnData = storage.ColumnData
	// Snapshot is an immutable table view.
	Snapshot = storage.Snapshot
	// PDT is a positional delta tree of pending updates.
	PDT = pdt.PDT
	// PDTStore manages shared PDT layers and transactions for a table.
	PDTStore = pdt.Store
	// Row is a tuple of values for PDT updates.
	Row = pdt.Row
	// Value is a dynamically typed column value.
	Value = pdt.Value
	// Operator is the vectorized iterator interface.
	Operator = exec.Operator
	// Batch is a set of column vectors.
	Batch = exec.Batch
	// RIDRange is a half-open row range.
	RIDRange = exec.RIDRange
	// ScanPredicate is a sargable value restriction on one stored
	// column; scans carrying one prune provably-excluded ranges through
	// the system's zone maps before any I/O is scheduled (§2.3 MinMax
	// data skipping).
	ScanPredicate = exec.ScanPredicate
	// ZoneMaps is the registry of per-(snapshot, column) MinMax indexes
	// predicate scans prune through.
	ZoneMaps = exec.ZoneMaps
	// SkipStats accumulates a run's zone-map pruning counters.
	SkipStats = exec.SkipStats
	// TPCHGenOptions parameterizes TPC-H generation (clustered lineitem).
	TPCHGenOptions = tpch.GenOptions
	// Policy selects the buffer management strategy.
	Policy = workload.Policy
	// Config parameterizes experiment runs.
	Config = workload.Config
	// Result reports one experiment run.
	Result = workload.Result
	// TPCHDB is a generated TPC-H-shaped database.
	TPCHDB = tpch.DB
	// DeviceArray is the striped multi-spindle disk model a System reads
	// through (1 device = the paper's single disk).
	DeviceArray = iosim.DeviceArray
	// ArrayStats is the device array's aggregate + per-device + skew
	// report (Result.DiskStats).
	ArrayStats = iosim.ArrayStats
)

// DefaultStripeChunk is the default striping granularity in blocks.
const DefaultStripeChunk = iosim.DefaultStripeChunk

// Column type constants.
const (
	Int64   = storage.Int64
	Float64 = storage.Float64
	String  = storage.String
)

// Buffer management policies.
const (
	LRU    = workload.LRU
	MRU    = workload.MRU
	Clock  = workload.Clock
	PBM    = workload.PBM
	PBMLRU = workload.PBMLRU
	CScan  = workload.CScan
)

// Re-exported constructors.
var (
	// NewCatalog creates an empty catalog.
	NewCatalog = storage.NewCatalog
	// NewColumnData creates empty bulk-load input.
	NewColumnData = storage.NewColumnData
	// NewPDT creates an empty delta tree over n stable tuples.
	NewPDT = pdt.New
	// NewPDTStore creates the shared PDT layers for a table.
	NewPDTStore = pdt.NewStore
	// GenerateTPCH builds the TPC-H-shaped database.
	GenerateTPCH = tpch.Generate
	// GenerateTPCHOpt is GenerateTPCH with generation options, e.g. a
	// shipdate-clustered lineitem for zone maps to exploit.
	GenerateTPCHOpt = tpch.GenerateOpt
	// IntVal, FloatVal and StrVal construct PDT values.
	IntVal   = pdt.IntVal
	FloatVal = pdt.FloatVal
	StrVal   = pdt.StrVal
	// PartitionRange implements Equation 1 static partitioning.
	PartitionRange = exec.PartitionRange
)

// SystemConfig parameterizes a simulated database instance.
type SystemConfig struct {
	// Policy is the buffer management strategy (default LRU).
	Policy Policy
	// BufferBytes is the pool capacity (default 64 MiB).
	BufferBytes int64
	// BandwidthMB is the disk bandwidth in MB/s (default 700).
	BandwidthMB float64
	// Cores is the simulated core count (default 8).
	Cores int
	// PerTupleCPU is the virtual CPU cost per scanned tuple.
	PerTupleCPU time.Duration
	// ChunkTuples is the Cooperative Scans chunk size (default 8192).
	ChunkTuples int64
	// PoolShards is the buffer-pool shard count (default 8; ignored
	// under CScan, whose ABM replaces the pool). A 1-shard pool is
	// bit-identical to the historical unsharded buffer manager.
	PoolShards int
	// Devices is the number of independent spindles in the striped disk
	// array (default 1, bit-identical to the historical single-disk
	// model). Each device keeps the full BandwidthMB, so aggregate
	// sequential bandwidth scales with the device count.
	Devices int
	// StripeChunk is the array's striping granularity in blocks/pages
	// (default iosim.DefaultStripeChunk); ignored when Devices <= 1.
	StripeChunk int
	// Real runs the system on the real-threaded wall-clock runtime
	// instead of the deterministic simulator: Go spawns goroutines,
	// sleeps and modeled disk time are wall time, and runs are not
	// reproducible. Eng is nil in this mode; use RT.
	Real bool
}

// DefaultPoolShards is the default shard count of a System's buffer pool.
const DefaultPoolShards = buffer.DefaultShards

// System is a fully wired engine instance: clock, disk, buffer manager
// (traditional or ABM), and an execution context. Create scans and
// operators against Ctx, and drive everything inside Run. By default the
// system runs on the deterministic simulator (Eng is its virtual-clock
// engine); with SystemConfig.Real it runs on real threads and Eng is nil.
type System struct {
	// RT is the runtime everything is wired to: the simulator adapter or
	// the real-threaded runtime.
	RT      rt.Runtime
	Eng     *sim.Engine // the simulation engine; nil under SystemConfig.Real
	Disk    *iosim.DeviceArray
	Pool    *buffer.Pool // nil under CScan
	PBM     *pbm.Group   // non-nil under PBM/PBMLRU: one instance per pool shard
	ABM     *abm.ABM     // non-nil under CScan
	Ctx     *exec.Ctx
	Catalog *Catalog

	chunkTuples int64 // zone-map granularity (= the CScan chunk size)
}

// NewSystem wires a simulated instance.
func NewSystem(cfg SystemConfig) *System {
	if cfg.BufferBytes <= 0 {
		cfg.BufferBytes = 64 << 20
	}
	if cfg.BandwidthMB <= 0 {
		cfg.BandwidthMB = 700
	}
	if cfg.Cores <= 0 {
		cfg.Cores = 8
	}
	if cfg.ChunkTuples <= 0 {
		cfg.ChunkTuples = abm.DefaultChunkTuples
	}
	if cfg.PoolShards <= 0 {
		cfg.PoolShards = DefaultPoolShards
	}
	s := &System{Catalog: storage.NewCatalog()}
	if cfg.Real {
		s.RT = rt.NewReal()
	} else {
		s.Eng = sim.NewEngine()
		s.RT = rt.Sim(s.Eng)
	}
	s.Disk = iosim.NewArray(s.RT, iosim.ArrayConfig{
		Config: iosim.Config{
			Bandwidth:   cfg.BandwidthMB * 1e6,
			SeekLatency: 50 * time.Microsecond,
		},
		Devices:     cfg.Devices,
		StripeChunk: cfg.StripeChunk,
	})
	s.Ctx = &exec.Ctx{
		RT:              s.RT,
		CPU:             exec.NewCPU(s.RT, cfg.Cores),
		PerTupleCPU:     cfg.PerTupleCPU,
		ReadAheadTuples: 16384,
		// The zone-map registry starts empty, so nothing changes until
		// BuildZoneMap registers an index and a scan carries a predicate.
		Zones: exec.NewZoneMaps(),
		Skip:  &exec.SkipStats{},
	}
	s.chunkTuples = cfg.ChunkTuples
	if cfg.Real {
		s.Ctx.Workers = rt.NewWorkerPool(s.RT, cfg.Cores)
	}
	switch cfg.Policy {
	case CScan:
		s.ABM = abm.New(s.RT, s.Disk, abm.Config{
			ChunkTuples: cfg.ChunkTuples,
			Capacity:    cfg.BufferBytes,
		})
		s.Ctx.ABM = s.ABM
	default:
		var factory func(int) buffer.Policy
		switch cfg.Policy {
		case MRU:
			factory = buffer.FactoryOf("MRU")
		case Clock:
			factory = buffer.FactoryOf("Clock")
		case PBM, PBMLRU:
			pc := pbm.DefaultConfig()
			pc.LRUMode = cfg.Policy == PBMLRU
			g := pbm.NewGroup(s.RT, pc, cfg.PoolShards)
			s.PBM = g
			factory = g.PolicyFactory()
		default:
			factory = buffer.FactoryOf("LRU")
		}
		s.Pool = buffer.NewShardedPool(s.RT, s.Disk, factory, cfg.BufferBytes, cfg.PoolShards)
		s.Ctx.Pool = s.Pool
		if s.PBM != nil {
			// Guarded: Ctx.PBM is an interface and a typed-nil *Group
			// would defeat the scans' nil check.
			s.Ctx.PBM = s.PBM
		}
	}
	return s
}

// WaitGroup coordinates concurrent processes on the system's runtime
// (virtual-time in sim mode, a sync.WaitGroup in real mode).
type WaitGroup = rt.WaitGroup

// NewWaitGroup creates a wait group bound to the system's runtime.
func (s *System) NewWaitGroup() WaitGroup { return s.RT.NewWaitGroup() }

// Go spawns fn as a concurrent process (a query stream, a background
// job). Call before or during Run.
func (s *System) Go(name string, fn func()) { s.RT.Go(name, fn) }

// Run executes main as the root process and drives the runtime until
// every process finishes. Blocks the calling goroutine.
func (s *System) Run(main func()) {
	s.RT.Go("main", func() {
		main()
		if s.ABM != nil {
			s.ABM.Stop()
		}
	})
	s.RT.Run()
}

// NewScan builds the policy-appropriate scan operator over a snapshot:
// a CScan when the system runs Cooperative Scans, a traditional Scan
// otherwise. ranges nil means the full table; deltas may be nil.
func (s *System) NewScan(snap *Snapshot, cols []int, ranges []RIDRange, deltas *PDT) Operator {
	if ranges == nil {
		n := snap.NumTuples()
		if deltas != nil {
			n = deltas.NumTuples()
		}
		ranges = []RIDRange{{Lo: 0, Hi: n}}
	}
	if s.ABM != nil {
		return &exec.CScan{Ctx: s.Ctx, Snap: snap, Cols: cols, Ranges: ranges, PDT: deltas}
	}
	return &exec.Scan{Ctx: s.Ctx, Snap: snap, Cols: cols, Ranges: ranges, PDT: deltas}
}

// BuildZoneMap summarizes an int64 column of a snapshot at the system's
// chunk granularity (so pruning decisions align with ABM chunk
// boundaries) and registers the index for predicate pushdown. It reads
// stable storage directly — no modeled I/O — the way Vectorwise
// maintains MinMax indexes during load; call it once after loading.
func (s *System) BuildZoneMap(snap *Snapshot, col int) {
	s.Ctx.Zones.Build(snap, col, s.chunkTuples)
}

// NewPredScan is NewScan with a pushed-down predicate: the scan prunes
// provably-excluded ranges through the registered zone maps at Open, so
// the buffer manager never schedules, loads, or accounts I/O for them.
// Pruning is conservative (block granularity) — wrap the result in a
// Select for exact filtering. Scans over pending updates (deltas != nil)
// are never pruned.
func (s *System) NewPredScan(snap *Snapshot, cols []int, ranges []RIDRange, deltas *PDT, pred *ScanPredicate) Operator {
	op := s.NewScan(snap, cols, ranges, deltas)
	switch sc := op.(type) {
	case *exec.Scan:
		sc.Pred = pred
	case *exec.CScan:
		sc.Pred = pred
	}
	return op
}

// SkipCounts reports the run's zone-map pruning counters: tuples
// requested by predicate-carrying scans and the subset skipped before
// any I/O was scheduled.
func (s *System) SkipCounts() (requested, skipped int64) { return s.Ctx.Skip.Counts() }

// IOBytes reports the total bytes read from the simulated disk so far.
func (s *System) IOBytes() int64 { return s.Disk.Stats().BytesRead }

// Now reports the current time on the system's clock (virtual in sim
// mode, wall time since startup in real mode).
func (s *System) Now() time.Duration { return time.Duration(s.RT.Now()) }
